// Package neummu is the public API of the NeuMMU reproduction: a
// simulation library for studying address translation in scratchpad-based
// neural processing units, reproducing "NeuMMU: Architectural Support for
// Efficient Address Translations in Neural Processing Units" (Hyun et al.,
// ASPLOS 2020).
//
// The package exposes four layers:
//
//   - Simulate / SimulateSparse run one workload on one MMU configuration
//     and return cycle-accurate results (the quickstart path).
//   - Sweep evaluates a cartesian design space (MMU kind × page size ×
//     model × batch × walker knobs) on a bounded worker pool, returning
//     deterministically ordered rows (see examples/sweep).
//   - Harness regenerates every table and figure of the paper's
//     evaluation (see EXPERIMENTS.md for the full index); each figure is
//     itself a sweep on the same engine.
//   - The type aliases re-export the building blocks (MMU kinds, page
//     sizes, configurations) for callers composing their own studies.
//
// Implementation packages live under internal/; this facade is the
// supported surface.
package neummu

import (
	"net/http"

	"neummu/internal/cluster"
	"neummu/internal/core"
	"neummu/internal/embeddings"
	"neummu/internal/exp"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/numa"
	"neummu/internal/serve"
	"neummu/internal/spatial"
	"neummu/internal/store"
	"neummu/internal/systolic"
	"neummu/internal/trace"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// MMUKind selects a translation architecture.
type MMUKind = core.Kind

// Canonical MMU configurations (§IV).
const (
	// OracleMMU resolves every translation instantly; all results are
	// normalized against it.
	OracleMMU = core.Oracle
	// BaselineIOMMU is the GPU-centric IOMMU of Table I: 2048-entry TLB,
	// 8 page-table walkers, no scoreboard, no merging, no path caching.
	BaselineIOMMU = core.IOMMU
	// ThroughputNeuMMU is the paper's proposal: 128 walkers with 32-slot
	// PRMBs, a pending-translation scoreboard, and per-walker TPregs.
	ThroughputNeuMMU = core.NeuMMU
	// CustomMMU builds the walker from per-point knobs; it is the kind to
	// sweep when exploring the design space (see Sweep and SweepAxes).
	CustomMMU = core.Custom
)

// PathKind selects a translation-path caching scheme for CustomMMU sweep
// points (§IV-C design space).
type PathKind = walker.PathKind

// Translation-path caching schemes.
const (
	PathNone  = walker.PathNone
	PathTPreg = walker.PathTPreg
	PathTPC   = walker.PathTPC
	PathUPTC  = walker.PathUPTC
)

// PageSize is a virtual-memory page granularity.
type PageSize = vm.PageSize

// Supported page sizes.
const (
	Page4K = vm.Page4K
	Page2M = vm.Page2M
)

// Result is a dense-workload simulation result.
type Result = npu.Result

// SparseResult is a recommendation-workload (NUMA case study) result.
type SparseResult = numa.Result

// GatherMode selects how a multi-NPU system reaches remote embeddings.
type GatherMode = numa.Mode

// Remote-gather modes for SimulateSparse (§V, §VI-A).
const (
	GatherBaselineCopy = numa.BaselineCopy
	GatherNUMASlow     = numa.NUMASlow
	GatherNUMAFast     = numa.NUMAFast
	GatherDemandPaging = numa.DemandPaging
	// GatherDemandPagingMosaic demand-pages at 4 KB and promotes hot
	// 2 MB regions to large pages (the §VI-A Mosaic-style extension).
	GatherDemandPagingMosaic = numa.DemandPagingMosaic
)

// Effort is the unified simulation-effort knob: mode ("exact",
// "sampled", "quick"), schedule caps, the sampled-mode CI target, and
// intra-cell parallelism. The same type is threaded through Options,
// HarnessOptions, the neuserve request schema, and the cluster wire
// protocol; see docs/API.md for the request form.
type Effort = exp.Effort

// Effort modes.
const (
	// EffortExact fully simulates every cell (the default).
	EffortExact = exp.EffortExact
	// EffortSampled simulates a seeded, stratified subset of each cell's
	// epochs and scales the totals up with 95% confidence intervals
	// (Result.Sampled carries the audit).
	EffortSampled = exp.EffortSampled
	// EffortQuick shrinks harness sweep grids (models, batches, caps) for
	// smoke and benchmark use; cells still simulate exactly.
	EffortQuick = exp.EffortQuick
)

// SampleStats is the sampling audit attached to a sampled-mode Result:
// population and simulated epoch counts, the derivable seed, and the
// confidence interval around the cycle estimate.
type SampleStats = npu.SampleStats

// Options tunes a Simulate call.
type Options struct {
	// PageSize defaults to Page4K.
	PageSize PageSize
	// RepeatCap and TileCap truncate repeated layers / per-layer tiles to
	// bound simulation time; zero simulates everything.
	RepeatCap, TileCap int
	// SpatialNPU switches the compute model from the TPU-style systolic
	// array to the DaDianNao/Eyeriss-style spatial grid (§VI-B).
	SpatialNPU bool
	// Effort selects the simulation mode and intra-cell parallelism. The
	// zero value simulates exactly on the monolithic engine. Effort caps,
	// when non-zero, win over the flat RepeatCap/TileCap above. Setting
	// IntraCellWorkers > 0 splits the simulation across cores at epoch
	// barriers — results are identical for every worker count ≥ 1 but the
	// epoch-structured schedule is a distinct semantics from the
	// monolithic engine; EffortSampled simulates a seeded epoch subset
	// and fills Result.Sampled with the scaling audit.
	Effort Effort
}

// DenseModels returns the paper aliases of the six dense workloads.
func DenseModels() []string {
	return []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"}
}

// SparseModels returns the recommendation-system workloads of §V.
func SparseModels() []string { return []string{"NCF", "DLRM"} }

// TransformerModels returns the post-paper transformer workloads: TF-1
// (BERT-base encoder), TF-2 (GPT-2-style decoder with autoregressive
// KV-cache streaming), and TF-3 (BERT-large at training-scale batch).
// They run everywhere dense models do — Simulate, Sweep, and the
// harness's tfsuite/kvcache/seqsweep studies (see EXPERIMENTS.md).
func TransformerModels() []string { return []string{"TF-1", "TF-2", "TF-3"} }

// Simulate runs one dense DNN or transformer workload (by paper alias or
// model name) at the given batch size under the given MMU kind.
func Simulate(model string, batch int, kind MMUKind, opts Options) (*Result, error) {
	m, err := workloads.ByName(model)
	if err != nil {
		return nil, err
	}
	if err := opts.Effort.Validate(); err != nil {
		return nil, err
	}
	ps := opts.PageSize
	if ps == 0 {
		ps = Page4K
	}
	mcfg := core.ConfigFor(kind, ps)
	if kind == core.Oracle {
		mcfg = core.Config{Kind: core.Oracle, PageSize: ps}
	}
	repeatCap, tileCap := opts.RepeatCap, opts.TileCap
	if opts.Effort.RepeatCap != 0 {
		repeatCap = opts.Effort.RepeatCap
	}
	if opts.Effort.TileCap != 0 {
		tileCap = opts.Effort.TileCap
	}
	cfg := npu.Config{
		MMU:              mcfg,
		Memory:           memsys.Baseline(),
		Compute:          systolic.Baseline(),
		RepeatCap:        repeatCap,
		TileCap:          tileCap,
		IntraCellWorkers: opts.Effort.IntraCellWorkers,
		Sampled:          opts.Effort.Sampled(),
		SampleTargetCI:   opts.Effort.TargetCI,
	}
	if opts.SpatialNPU {
		cfg.Compute = spatial.Baseline()
	}
	return npu.RunModel(m, batch, cfg)
}

// SimulateSparse runs one recommendation workload on the 4-NPU system of
// §V under the given remote-gather mode and MMU kind.
func SimulateSparse(model string, batch int, mode GatherMode, kind MMUKind, ps PageSize) (*SparseResult, error) {
	cfg, err := embeddings.ByName(model)
	if err != nil {
		return nil, err
	}
	if ps == 0 {
		ps = Page4K
	}
	return numa.Run(cfg, batch, mode, kind, ps, numa.DefaultSystem())
}

// SimulateSparseIterations runs several consecutive inference batches that
// share MMU and demand-paged residency state: the first batch runs cold,
// later batches profit from already-migrated pages (or thrash when local
// memory is oversubscribed). Returns one result per batch.
func SimulateSparseIterations(model string, batch, iterations int, mode GatherMode,
	kind MMUKind, ps PageSize) ([]*SparseResult, error) {
	cfg, err := embeddings.ByName(model)
	if err != nil {
		return nil, err
	}
	if ps == 0 {
		ps = Page4K
	}
	return numa.RunIterations(cfg, batch, iterations, mode, kind, ps, numa.DefaultSystem())
}

// Harness regenerates the paper's tables and figures; see internal/exp
// for the per-figure methods and EXPERIMENTS.md for the index.
type Harness = exp.Harness

// HarnessOptions tunes harness effort: the unified Effort knob (mode,
// caps, CI target, intra-cell parallelism — the legacy flat
// Quick/RepeatCap/TileCap fields remain accepted and are folded in) and
// Workers, which bounds the sweep engine's cross-cell parallelism
// (0 = GOMAXPROCS).
type HarnessOptions = exp.Options

// NewHarness returns a figure-regeneration harness.
func NewHarness(opts HarnessOptions) *Harness { return exp.New(opts) }

// SweepAxes declares the cartesian design space of a sweep: any subset of
// MMU kind × page size × model × batch × walker shape (PTW count, PRMB
// slots, scoreboard, path caching, TLB capacity). Unset axes take
// defaults; see the field documentation on exp.Axes.
type SweepAxes = exp.Axes

// SweepPoint is one fully specified design point of a sweep grid.
type SweepPoint = exp.Point

// SweepResult is one evaluated sweep point: the point itself, performance
// normalized to the oracle MMU at the point's page size, and the full
// simulation result for deeper metrics.
type SweepResult = exp.SweepResult

// Sweep expands the axes into their cartesian product and evaluates every
// design point on a bounded worker pool (opts.Workers; 0 = GOMAXPROCS),
// returning typed rows in deterministic grid order regardless of how the
// parallel execution interleaves. Oracle baselines and tiling plans are
// memoized and shared across workers, so a sweep never simulates the same
// baseline twice. It is the engine every figure in EXPERIMENTS.md runs
// on; use a Harness directly to run several sweeps against one shared
// cache.
func Sweep(axes SweepAxes, opts HarnessOptions) ([]SweepResult, error) {
	return NewHarness(opts).Sweep(axes)
}

// Server is the simulation-as-a-service layer behind cmd/neuserve: an
// http.Handler exposing sweep, single-simulation, figure, and metrics
// endpoints over a sharded scheduler and a content-addressed result
// cache. Embed it to serve NeuMMU studies from your own process; see
// internal/serve for the endpoint list and the determinism guarantee
// (same request ⇒ byte-identical body, cache hit or miss).
type Server = serve.Server

// ServerConfig tunes a Server: worker budget, scheduler shards, queue
// bounds (admission control), and cache byte bounds.
type ServerConfig = serve.Config

// NewServer returns a simulation service ready to mount on any HTTP mux.
// Call Close after the HTTP server has drained to stop the scheduler.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// Store is the durable result tier behind a Server's RAM cache: one
// checksummed, content-addressed file per simulated cell, written behind
// the request path and GC'd coldest-first to a byte budget, so a
// restarted process answers previously simulated cells from disk instead
// of re-simulating. Corrupt entries are quarantined and re-simulated,
// never served. See internal/store for the file format and policy.
type Store = store.Store

// StoreConfig tunes a Store: directory, byte budget, write-queue depth.
type StoreConfig = store.Config

// OpenStore opens (or creates) a durable result store. Hand it to a
// Server via ServerConfig.Store; the caller owns its lifecycle and calls
// Close after the Server has closed.
func OpenStore(cfg StoreConfig) (*Store, error) { return store.Open(cfg) }

// Coordinator is the scale-out front of a neuserve fleet: an http.Handler
// accepting the same sweep API as a Server, sharding the expanded grid
// across workers by consistent hashing on the content-addressed cell key,
// and merging the streams back byte-identical to a single process. See
// internal/cluster for the routing, failure-handling, and determinism
// contract.
type Coordinator = cluster.Coordinator

// ClusterConfig tunes a Coordinator: the worker fleet, hash-ring
// replicas, per-cell retry budget, shard timeout, and health probing.
type ClusterConfig = cluster.Config

// NewCoordinator returns a sweep coordinator for the given worker fleet
// (worker URLs point at plain neuserve instances). Call Close after the
// HTTP server has drained to stop the health checker.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// Trace is the spans recorded under one request's trace ID, as served by
// GET /debug/traces/{id} on a Server or Coordinator. Every /v1/sweep,
// /v1/sim, and /v1/cells request is traced end to end: an inbound
// X-Trace-Id header is honored (one is minted otherwise), propagated to
// workers on cluster dispatch, and echoed on the response; each cell
// carries per-stage latency attribution (queue wait, cache lookup, disk
// read, compute, re-route, merge) plus its simulation counters.
type Trace = trace.Trace

// TraceConfig tunes tracing on a ServerConfig or ClusterConfig: span
// ring-buffer capacity, the slow-cell threshold and log depth, and the
// structured logger that receives slow-cell records.
type TraceConfig = trace.Config

// RemoteSweepFunc is the pluggable remote sweep backend type carried by
// HarnessOptions.Remote.
type RemoteSweepFunc = exp.RemoteFunc

// RemoteSweep returns a remote sweep backend for HarnessOptions.Remote:
// Sweep and SweepPoints evaluate their cells on the neuserve fleet (or
// single instance) at baseURL instead of simulating in-process, keeping
// deterministic row order and values. Rows carry headline metrics only
// (cycles, translations, normalized perf). A nil client selects a
// default suited to long streaming responses.
func RemoteSweep(baseURL string, client *http.Client) exp.RemoteFunc {
	return cluster.SweepFunc(baseURL, client)
}
