package neummu

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSimulateDense(t *testing.T) {
	res, err := Simulate("CNN-1", 1, ThroughputNeuMMU, Options{TileCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Translations <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSimulateOracleNormalization(t *testing.T) {
	opts := Options{TileCap: 4}
	oracle, err := Simulate("RNN-2", 1, OracleMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	io, err := Simulate("RNN-2", 1, BaselineIOMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p := io.NormalizedPerf(oracle); p <= 0 || p >= 1 {
		t.Fatalf("baseline normalized perf = %v", p)
	}
}

func TestSimulateUnknownModel(t *testing.T) {
	if _, err := Simulate("VGG", 1, OracleMMU, Options{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSimulateSpatialOption(t *testing.T) {
	res, err := Simulate("CNN-1", 1, ThroughputNeuMMU, Options{TileCap: 2, SpatialNPU: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compute == "systolic-128x128" {
		t.Fatal("spatial option ignored")
	}
}

func TestSimulateLargePages(t *testing.T) {
	res, err := Simulate("CNN-1", 1, ThroughputNeuMMU, Options{TileCap: 2, PageSize: Page2M})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestSimulateSparseModes(t *testing.T) {
	base, err := SimulateSparse("NCF", 4, GatherBaselineCopy, OracleMMU, Page4K)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SimulateSparse("NCF", 4, GatherNUMAFast, ThroughputNeuMMU, Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Breakdown.Total() >= base.Breakdown.Total() {
		t.Fatalf("NUMA(fast) %d not faster than baseline %d",
			fast.Breakdown.Total(), base.Breakdown.Total())
	}
}

func TestModelLists(t *testing.T) {
	if len(DenseModels()) != 6 || len(SparseModels()) != 2 {
		t.Fatal("model lists wrong")
	}
	for _, m := range DenseModels() {
		if _, err := Simulate(m, 1, OracleMMU, Options{TileCap: 1, RepeatCap: 1}); err != nil {
			t.Fatalf("Simulate(%q): %v", m, err)
		}
	}
}

func TestNewHarnessQuick(t *testing.T) {
	h := NewHarness(HarnessOptions{Quick: true})
	rows, err := h.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestSweepFacade(t *testing.T) {
	rows, err := Sweep(SweepAxes{
		Kinds:     []MMUKind{CustomMMU},
		Models:    []string{"CNN-1"},
		Batches:   []int{1},
		PTWs:      []int{8, 128},
		PRMBSlots: []int{32},
		Paths:     []PathKind{PathTPreg},
	}, HarnessOptions{RepeatCap: 1, TileCap: 4, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("swept %d points, want 2", len(rows))
	}
	if rows[0].Point.PTWs != 8 || rows[1].Point.PTWs != 128 {
		t.Fatalf("rows out of grid order: %+v", rows)
	}
	// More walkers must not hurt: the PTW axis is monotone here.
	if rows[1].Perf < rows[0].Perf {
		t.Fatalf("128 PTWs (%v) slower than 8 (%v)", rows[1].Perf, rows[0].Perf)
	}
	for _, r := range rows {
		if r.Result == nil || r.Result.Cycles <= 0 {
			t.Fatalf("missing simulation result: %+v", r)
		}
	}
}

func TestServerFacade(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	req := `{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["neummu"]}`
	var bodies [2][]byte
	for i := range bodies {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json",
			strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("sweep = %d: %s", resp.StatusCode, buf.Bytes())
		}
		bodies[i] = buf.Bytes()
	}
	// The service determinism guarantee, exercised through the facade:
	// cold (miss) and warm (hit) bodies are byte-identical.
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("cold and warm sweep bodies differ")
	}
}
