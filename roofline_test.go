package neummu

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

func simulatePlan(plan *workloads.Plan) (*npu.Result, error) {
	return npu.Run(plan, npu.Config{
		MMU:     core.Config{Kind: core.Oracle, PageSize: vm.Page4K},
		Memory:  memsys.Baseline(),
		Compute: systolic.Baseline(),
	})
}

// The paper cross-validates its NPU model against Google Cloud TPU (80%
// correlation, §II-C). Our substitute validation checks the simulator
// against the analytic roofline: end-to-end cycles can never beat either
// the compute bound (MACs / peak) or the bandwidth bound (bytes / BW), and
// an oracle run should land within a small factor of max(bounds) — the
// double-buffered pipeline is designed to approach the roofline.
func TestOracleRespectsRoofline(t *testing.T) {
	const (
		peakMACs = 128 * 128 // per cycle
		bwBytes  = 600       // per cycle
	)
	for _, model := range DenseModels() {
		m, err := workloads.ByName(model)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := workloads.BuildPlan(m, 4, workloads.DefaultTiles())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(model, 4, OracleMMU, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Bandwidth bound over the traffic the simulator actually moved.
		bwBound := res.BytesFetched / bwBytes
		if int64(res.Cycles) < bwBound {
			t.Errorf("%s: %d cycles beats the bandwidth roofline %d", model, res.Cycles, bwBound)
		}
		// The pipeline should stay within 16x of the bandwidth bound:
		// far looser than a real roofline (fill/drain overheads, small
		// tiles) but tight enough to catch a broken timing model.
		if int64(res.Cycles) > 16*bwBound && res.ComputeCycles < res.MemPhaseCycles {
			t.Errorf("%s: %d cycles is far off the %d-cycle bandwidth roofline for a memory-bound run",
				model, res.Cycles, bwBound)
		}
		_ = plan
	}
}

// TestComputeBoundWorkloadTracksComputeRoofline: a deliberately
// compute-heavy layer must be compute-bound and near its MAC roofline.
func TestComputeBoundWorkloadTracksComputeRoofline(t *testing.T) {
	m := workloads.Model{Name: "fatconv", Layers: []workloads.LayerSpec{
		{Name: "conv", Kind: workloads.Conv, C: 512, H: 28, W: 28,
			K: 512, R: 3, S: 3, Stride: 1, Pad: 1},
	}}
	plan, err := workloads.BuildPlan(m, 8, workloads.DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulatePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	macs := int64(8) * workloads.MACCount(m)
	computeBound := macs / (128 * 128)
	if int64(res.Cycles) < computeBound {
		t.Fatalf("cycles %d beat the compute roofline %d", res.Cycles, computeBound)
	}
	if float64(res.Cycles) > 2.5*float64(computeBound) {
		t.Fatalf("compute-bound run at %d cycles, roofline %d: pipeline not overlapping",
			res.Cycles, computeBound)
	}
}

// TestTransformerRespectsRoofline generalizes the roofline validation to
// the transformer suite: encoder GEMM/attention pipelines and TF-2's
// autoregressive decode must respect both the bandwidth bound and the MAC
// bound, with the MAC bound derived analytically from MACCount (whose
// decode-step arithmetic TestDecodeStepMACBoundPinned pins).
func TestTransformerRespectsRoofline(t *testing.T) {
	const (
		peakMACs = 128 * 128
		bwBytes  = 600
		batch    = 2
	)
	for _, model := range TransformerModels() {
		m, err := workloads.ByName(model)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(model, batch, OracleMMU, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bwBound := res.BytesFetched / bwBytes
		macBound := int64(batch) * workloads.MACCount(m) / peakMACs
		if int64(res.Cycles) < bwBound {
			t.Errorf("%s: %d cycles beats the bandwidth roofline %d", model, res.Cycles, bwBound)
		}
		if int64(res.Cycles) < macBound {
			t.Errorf("%s: %d cycles beats the compute roofline %d", model, res.Cycles, macBound)
		}
		// The double-buffered pipeline should land within a loose factor of
		// the binding roofline, as in the dense suite.
		bound := max(bwBound, macBound)
		if int64(res.Cycles) > 16*bound {
			t.Errorf("%s: %d cycles is far off the %d-cycle roofline", model, res.Cycles, bound)
		}
	}
}

// TestDecodeStepMACBoundPinned pins the subtle part of the transformer MAC
// bound: autoregressive decode. Step i scores one query against
// CtxLen+i+1 tokens, so attention MACs follow an arithmetic series —
// MACCount's closed form must equal the literal per-step sum — while the
// per-step projections repeat with WeightReuse, multiplying MACs but NOT
// parameters.
func TestDecodeStepMACBoundPinned(t *testing.T) {
	const blocks, d, heads, ff, past, steps = 2, 64, 4, 256, 32, 8
	m := workloads.TransformerDecoder("pin", blocks, d, heads, ff, past, steps)

	// Independent re-derivation, per-step loop instead of closed form.
	var want int64
	for _, l := range m.Layers {
		var per int64
		switch l.Kind {
		case workloads.GEMM:
			per = int64(l.M) * int64(l.KDim) * int64(l.N)
		case workloads.LayerNorm:
			per = 2 * int64(l.SeqLen) * int64(l.DModel)
		case workloads.Attention:
			for i := 0; i < l.DecodeSteps; i++ {
				ctx := int64(l.CtxLen + i + 1)
				per += 2 * int64(l.DModel) * ctx // QKᵀ + AV, one query token
			}
		}
		want += per * int64(l.Times())
	}
	if got := workloads.MACCount(m); got != want {
		t.Fatalf("decode MACCount = %d, per-step sum = %d", got, want)
	}

	// WeightReuse: generating 8 tokens must cost 8x the attention+GEMM MACs
	// of generating 1, but exactly the same parameters.
	one := workloads.TransformerDecoder("pin1", blocks, d, heads, ff, past, 1)
	if workloads.ParamCount(m) != workloads.ParamCount(one) {
		t.Fatalf("decode steps changed the parameter count: %d steps -> %d params, 1 step -> %d",
			steps, workloads.ParamCount(m), workloads.ParamCount(one))
	}
	if workloads.MACCount(m) <= workloads.MACCount(one) {
		t.Fatalf("more decode steps must mean more MACs (%d vs %d)",
			workloads.MACCount(m), workloads.MACCount(one))
	}
}

// TestEmbeddingGatherRespectsBandwidthRoofline: the gather phase of the
// recommendation suite can never beat the platform's aggregate bandwidth —
// local DRAM (600 B/cy) plus the three remote NPU links (160 B/cy each in
// the NUMA-fast fabric of Table I).
func TestEmbeddingGatherRespectsBandwidthRoofline(t *testing.T) {
	const aggBW = 600 + 3*160
	for _, model := range SparseModels() {
		res, err := SimulateSparse(model, 64, GatherNUMAFast, ThroughputNeuMMU, Page4K)
		if err != nil {
			t.Fatal(err)
		}
		bound := res.BytesGathered / aggBW
		lookup := int64(res.Breakdown.EmbeddingLookup)
		if lookup < bound {
			t.Errorf("%s: gather phase %d cycles beats the %d-cycle aggregate-bandwidth roofline (%d bytes)",
				model, lookup, bound, res.BytesGathered)
		}
	}
}
