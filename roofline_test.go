package neummu

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

func simulatePlan(plan *workloads.Plan) (*npu.Result, error) {
	return npu.Run(plan, npu.Config{
		MMU:     core.Config{Kind: core.Oracle, PageSize: vm.Page4K},
		Memory:  memsys.Baseline(),
		Compute: systolic.Baseline(),
	})
}

// The paper cross-validates its NPU model against Google Cloud TPU (80%
// correlation, §II-C). Our substitute validation checks the simulator
// against the analytic roofline: end-to-end cycles can never beat either
// the compute bound (MACs / peak) or the bandwidth bound (bytes / BW), and
// an oracle run should land within a small factor of max(bounds) — the
// double-buffered pipeline is designed to approach the roofline.
func TestOracleRespectsRoofline(t *testing.T) {
	const (
		peakMACs = 128 * 128 // per cycle
		bwBytes  = 600       // per cycle
	)
	for _, model := range DenseModels() {
		m, err := workloads.ByName(model)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := workloads.BuildPlan(m, 4, workloads.DefaultTiles())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(model, 4, OracleMMU, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Bandwidth bound over the traffic the simulator actually moved.
		bwBound := res.BytesFetched / bwBytes
		if int64(res.Cycles) < bwBound {
			t.Errorf("%s: %d cycles beats the bandwidth roofline %d", model, res.Cycles, bwBound)
		}
		// The pipeline should stay within 16x of the bandwidth bound:
		// far looser than a real roofline (fill/drain overheads, small
		// tiles) but tight enough to catch a broken timing model.
		if int64(res.Cycles) > 16*bwBound && res.ComputeCycles < res.MemPhaseCycles {
			t.Errorf("%s: %d cycles is far off the %d-cycle bandwidth roofline for a memory-bound run",
				model, res.Cycles, bwBound)
		}
		_ = plan
	}
}

// TestComputeBoundWorkloadTracksComputeRoofline: a deliberately
// compute-heavy layer must be compute-bound and near its MAC roofline.
func TestComputeBoundWorkloadTracksComputeRoofline(t *testing.T) {
	m := workloads.Model{Name: "fatconv", Layers: []workloads.LayerSpec{
		{Name: "conv", Kind: workloads.Conv, C: 512, H: 28, W: 28,
			K: 512, R: 3, S: 3, Stride: 1, Pad: 1},
	}}
	plan, err := workloads.BuildPlan(m, 8, workloads.DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulatePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	macs := int64(8) * workloads.MACCount(m)
	computeBound := macs / (128 * 128)
	if int64(res.Cycles) < computeBound {
		t.Fatalf("cycles %d beat the compute roofline %d", res.Cycles, computeBound)
	}
	if float64(res.Cycles) > 2.5*float64(computeBound) {
		t.Fatalf("compute-bound run at %d cycles, roofline %d: pipeline not overlapping",
			res.Cycles, computeBound)
	}
}
